//! Differentiable operations recorded on a [`crate::Tape`].
//!
//! Each op computes its forward value eagerly with `miss_tensor` kernels and
//! registers a backward closure that reads input values from the tape arena
//! (by index — no tensor clones are captured unless the math requires the
//! *output*, which closures also read by index).

mod activation;
mod arith;
mod block;
mod linear;
mod loss;
mod matmul;
mod reduce;
mod shape;

pub use linear::LinearAct;
