//! Layout ops: reshape, concat, slice, gather, repeat/tile, transpose.

use crate::tape::{Tape, Var};
use miss_tensor::Tensor;

impl Tape {
    /// Reinterpret `x` with a new `(rows, cols)` shape (row-major, free).
    pub fn reshape(&mut self, x: Var, rows: usize, cols: usize) -> Var {
        let (r0, c0) = self.shape(x);
        let value = self.value(x).clone().reshape(rows, cols);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            ctx.accum(x, g.clone().reshape(r0, c0));
        })
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let parts: Vec<&Tensor> = xs.iter().map(|v| self.value(*v)).collect();
        let value = Tensor::concat_cols(&parts);
        let widths: Vec<usize> = parts.iter().map(|p| p.cols()).collect();
        let xs: Vec<Var> = xs.to_vec();
        let inputs = xs.clone();
        self.push_op(&inputs, value, move |g, _vals, ctx| {
            let mut off = 0;
            for (v, w) in xs.iter().zip(&widths) {
                ctx.accum(*v, g.slice_cols(off, off + w));
                off += w;
            }
        })
    }

    /// Vertical concatenation.
    pub fn concat_rows(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty());
        let parts: Vec<&Tensor> = xs.iter().map(|v| self.value(*v)).collect();
        let value = Tensor::concat_rows(&parts);
        let heights: Vec<usize> = parts.iter().map(|p| p.rows()).collect();
        let cols = value.cols();
        let xs: Vec<Var> = xs.to_vec();
        let inputs = xs.clone();
        self.push_op(&inputs, value, move |g, _vals, ctx| {
            let mut off = 0;
            for (v, h) in xs.iter().zip(&heights) {
                let idx: Vec<usize> = (off..off + h).collect();
                ctx.accum(*v, g.gather_rows(&idx));
                off += h;
            }
            debug_assert_eq!(g.cols(), cols);
        })
    }

    /// Copy of columns `[lo, hi)`.
    pub fn slice_cols(&mut self, x: Var, lo: usize, hi: usize) -> Var {
        let (r, c) = self.shape(x);
        let value = self.value(x).slice_cols(lo, hi);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                dx.row_mut(i)[lo..hi].copy_from_slice(g.row(i));
            }
            ctx.accum(x, dx);
        })
    }

    /// Gather rows by index (indices may repeat; backward scatter-adds).
    pub fn gather_rows(&mut self, x: Var, idx: Vec<usize>) -> Var {
        let (r, c) = self.shape(x);
        let value = self.value(x).gather_rows(&idx);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            dx.scatter_add_rows(&idx, g);
            ctx.accum(x, dx);
        })
    }

    /// Repeat each row `times` times consecutively.
    pub fn repeat_rows_interleave(&mut self, x: Var, times: usize) -> Var {
        let (r, c) = self.shape(x);
        let value = self.value(x).repeat_rows_interleave(times);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                let drow = dx.row_mut(i);
                for t in 0..times {
                    for (d, &gv) in drow.iter_mut().zip(g.row(i * times + t)) {
                        *d += gv;
                    }
                }
            }
            ctx.accum(x, dx);
        })
    }

    /// Repeat the whole matrix `times` times vertically.
    pub fn tile_rows(&mut self, x: Var, times: usize) -> Var {
        let (r, c) = self.shape(x);
        let value = self.value(x).tile_rows(times);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            for t in 0..times {
                for i in 0..r {
                    for (d, &gv) in dx.row_mut(i).iter_mut().zip(g.row(t * r + i)) {
                        *d += gv;
                    }
                }
            }
            ctx.accum(x, dx);
        })
    }

    /// Transposed copy.
    pub fn transpose(&mut self, x: Var) -> Var {
        let value = self.value(x).transpose();
        self.push_op(&[x], value, move |g, _vals, ctx| {
            ctx.accum(x, g.transpose());
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check;
    use miss_tensor::Tensor;

    fn input(r: usize, c: usize) -> Tensor {
        Tensor::from_fn(r, c, |i, j| 0.23 * (i as f32) + 0.11 * (j as f32) - 0.4)
    }

    fn quad_head(t: &mut crate::Tape, y: crate::Var) -> crate::Var {
        let sq = t.mul(y, y);
        t.sum_all(sq)
    }

    #[test]
    fn grad_reshape() {
        check(
            &[input(2, 6)],
            |t, vs| {
                let y = t.reshape(vs[0], 4, 3);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        check(
            &[input(3, 2), input(3, 4)],
            |t, vs| {
                let y = t.concat_cols(&[vs[0], vs[1]]);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_concat_rows() {
        check(
            &[input(2, 3), input(4, 3)],
            |t, vs| {
                let y = t.concat_rows(&[vs[0], vs[1]]);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_slice_cols() {
        check(
            &[input(3, 5)],
            |t, vs| {
                let y = t.slice_cols(vs[0], 1, 4);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_gather_rows_with_repeats() {
        check(
            &[input(4, 3)],
            |t, vs| {
                let y = t.gather_rows(vs[0], vec![0, 2, 2, 3]);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_repeat_interleave() {
        check(
            &[input(3, 2)],
            |t, vs| {
                let y = t.repeat_rows_interleave(vs[0], 3);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_tile_rows() {
        check(
            &[input(2, 3)],
            |t, vs| {
                let y = t.tile_rows(vs[0], 2);
                quad_head(t, y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_transpose() {
        check(
            &[input(3, 4)],
            |t, vs| {
                let y = t.transpose(vs[0]);
                quad_head(t, y)
            },
            5e-2,
        );
    }
}
