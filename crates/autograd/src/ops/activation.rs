//! Pointwise nonlinearities.

use crate::tape::{Tape, Var};
use miss_tensor::Tensor;

impl Tape {
    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        let out_slot = self.len(); // the op's own index after push
        self.push_op(&[x], value, move |g, vals, ctx| {
            let y = &vals[out_slot];
            let dx = Tensor::from_vec(
                g.rows(),
                g.cols(),
                g.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(&gv, &yv)| if yv > 0.0 { gv } else { 0.0 })
                    .collect(),
            );
            ctx.accum(x, dx);
        })
    }

    /// Parametric ReLU with a learnable `1×1` slope `alpha` for the negative
    /// part (the activation DIN's MLP uses).
    pub fn prelu(&mut self, x: Var, alpha: Var) -> Var {
        assert_eq!(self.shape(alpha), (1, 1), "prelu slope must be 1x1");
        let av = self.value(alpha).item();
        let value = self.value(x).map(|v| if v > 0.0 { v } else { av * v });
        self.push_op(&[x, alpha], value, move |g, vals, ctx| {
            let av = vals[alpha.0].item();
            let xs = vals[x.0].as_slice();
            let mut dx = Vec::with_capacity(xs.len());
            let mut da = 0.0f32;
            for (&gv, &xv) in g.as_slice().iter().zip(xs) {
                if xv > 0.0 {
                    dx.push(gv);
                } else {
                    dx.push(gv * av);
                    da += gv * xv;
                }
            }
            ctx.accum(x, Tensor::from_vec(g.rows(), g.cols(), dx));
            ctx.accum(alpha, Tensor::scalar(da));
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.value(x).map(miss_util::sigmoid);
        let out_slot = self.len();
        self.push_op(&[x], value, move |g, vals, ctx| {
            let y = &vals[out_slot];
            let dx = Tensor::from_vec(
                g.rows(),
                g.cols(),
                g.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(&gv, &yv)| gv * yv * (1.0 - yv))
                    .collect(),
            );
            ctx.accum(x, dx);
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        let out_slot = self.len();
        self.push_op(&[x], value, move |g, vals, ctx| {
            let y = &vals[out_slot];
            let dx = Tensor::from_vec(
                g.rows(),
                g.cols(),
                g.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(&gv, &yv)| gv * (1.0 - yv * yv))
                    .collect(),
            );
            ctx.accum(x, dx);
        })
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::exp);
        let out_slot = self.len();
        self.push_op(&[x], value, move |g, vals, ctx| {
            ctx.accum(x, g.mul(&vals[out_slot]));
        })
    }

    /// `ln(max(x, eps))` — the clamp keeps log-loss style expressions finite.
    pub fn ln_clamped(&mut self, x: Var, eps: f32) -> Var {
        let value = self.value(x).map(|v| v.max(eps).ln());
        self.push_op(&[x], value, move |g, vals, ctx| {
            let dx = Tensor::from_vec(
                g.rows(),
                g.cols(),
                g.as_slice()
                    .iter()
                    .zip(vals[x.0].as_slice())
                    .map(|(&gv, &xv)| if xv > eps { gv / xv } else { 0.0 })
                    .collect(),
            );
            ctx.accum(x, dx);
        })
    }

    /// Multiply by a fixed 0/1 (or scaled) mask — inverted dropout and
    /// attention masking. The mask is plain data, not a tape value.
    pub fn mask(&mut self, x: Var, mask: Tensor) -> Var {
        assert_eq!(self.shape(x), mask.shape(), "mask shape mismatch");
        let value = self.value(x).mul(&mask);
        self.push_op(&[x], value, move |g, _vals, ctx| {
            ctx.accum(x, g.mul(&mask));
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check;
    use miss_tensor::Tensor;

    // Inputs chosen away from the ReLU/PReLU kink so finite differences are clean.
    fn smooth_input() -> Tensor {
        Tensor::from_fn(3, 4, |r, c| {
            let v = 0.37 * (r as f32 + 1.0) - 0.53 * (c as f32) + 0.21;
            if v.abs() < 0.05 {
                v + 0.1
            } else {
                v
            }
        })
    }

    #[test]
    fn grad_relu() {
        check(
            &[smooth_input()],
            |t, vs| {
                let y = t.relu(vs[0]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_prelu() {
        check(
            &[smooth_input(), Tensor::scalar(0.3)],
            |t, vs| {
                let y = t.prelu(vs[0], vs[1]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_sigmoid() {
        check(
            &[smooth_input()],
            |t, vs| {
                let y = t.sigmoid(vs[0]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_tanh() {
        check(
            &[smooth_input()],
            |t, vs| {
                let y = t.tanh(vs[0]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_exp() {
        check(
            &[smooth_input()],
            |t, vs| {
                let y = t.exp(vs[0]);
                t.mean_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_ln() {
        let x = Tensor::from_fn(2, 3, |r, c| 0.5 + 0.3 * (r as f32) + 0.2 * (c as f32));
        check(
            &[x],
            |t, vs| {
                let y = t.ln_clamped(vs[0], 1e-6);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_mask() {
        let mask = Tensor::from_fn(3, 4, |r, c| ((r + c) % 2) as f32);
        check(
            &[smooth_input()],
            move |t, vs| {
                let y = t.mask(vs[0], mask.clone());
                t.sum_all(y)
            },
            5e-2,
        );
    }
}
