//! Matrix products.

use crate::tape::{Tape, Var};

impl Tape {
    /// `a (m×k) @ b (k×n)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_nn(self.value(b));
        self.push_op(&[a, b], value, move |g, vals, ctx| {
            ctx.accum(a, g.matmul_nt(&vals[b.0]));
            ctx.accum(b, vals[a.0].matmul_tn(g));
        })
    }

    /// `a (m×k) @ b^T (n×k) -> m×n`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_nt(self.value(b));
        self.push_op(&[a, b], value, move |g, vals, ctx| {
            // C = A B^T  =>  dA = G B, dB = G^T A.
            ctx.accum(a, g.matmul_nn(&vals[b.0]));
            ctx.accum(b, g.matmul_tn(&vals[a.0]));
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check;
    use miss_tensor::Tensor;

    #[test]
    fn grad_matmul() {
        let a = Tensor::from_fn(3, 4, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let b = Tensor::from_fn(4, 2, |r, c| 0.1 * (r as f32 + 1.0) * (c as f32 - 0.5));
        check(
            &[a, b],
            |t, vs| {
                let y = t.matmul(vs[0], vs[1]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_matmul_nt() {
        let a = Tensor::from_fn(3, 4, |r, c| 0.25 * (r as f32) - 0.15 * (c as f32));
        let b = Tensor::from_fn(5, 4, |r, c| 0.05 * (r as f32 - 2.0) + 0.2 * (c as f32));
        check(
            &[a, b],
            |t, vs| {
                let y = t.matmul_nt(vs[0], vs[1]);
                let y2 = t.mul(y, y); // non-linear head to exercise both factors
                t.mean_all(y2)
            },
            5e-2,
        );
    }
}
