//! Block (per-sample batched) matrix products. These power every attention
//! mechanism in the workspace: DIN's local activation unit, AutoInt's field
//! self-attention, FiGNN's edge attention, DMR, the MISS-SA extractor, and
//! xDeepFM's CIN (via the shared-parameter variant).

use crate::tape::{Tape, Var};
use miss_tensor::Tensor;

impl Tape {
    /// Per-block `A_i (p×k) @ B_i^T (q×k)`; `a` is `(blocks·p)×k`,
    /// `b` is `(blocks·q)×k`, output `(blocks·p)×q`.
    pub fn bmm_nt(&mut self, a: Var, b: Var, blocks: usize) -> Var {
        let value = self.value(a).bmm_nt(self.value(b), blocks);
        self.push_op(&[a, b], value, move |g, vals, ctx| {
            // C_i = A_i B_i^T  =>  dA_i = G_i B_i ; dB_i = G_i^T A_i.
            ctx.accum(a, g.bmm_nn(&vals[b.0], blocks));
            ctx.accum(b, g.bmm_tn(&vals[a.0], blocks));
        })
    }

    /// Per-block `A_i (p×q) @ B_i (q×k)`; `a` is `(blocks·p)×q`,
    /// `b` is `(blocks·q)×k`, output `(blocks·p)×k`.
    pub fn bmm_nn(&mut self, a: Var, b: Var, blocks: usize) -> Var {
        let value = self.value(a).bmm_nn(self.value(b), blocks);
        self.push_op(&[a, b], value, move |g, vals, ctx| {
            // C_i = A_i B_i  =>  dA_i = G_i B_i^T ; dB_i = A_i^T G_i.
            ctx.accum(a, g.bmm_nt(&vals[b.0], blocks));
            ctx.accum(b, vals[a.0].bmm_tn(g, blocks));
        })
    }

    /// Shared-parameter per-block product `W (h×q) @ X_i (q×k)` for every
    /// block `i`; `x` is `(blocks·q)×k`, output `(blocks·h)×k`. The weight
    /// gradient sums over blocks. This is xDeepFM's CIN feature-map step.
    pub fn bmm_param_nn(&mut self, w: Var, x: Var, blocks: usize) -> Var {
        let (h, q) = self.shape(w);
        let (bq, k) = self.shape(x);
        assert_eq!(bq, blocks * q, "bmm_param_nn shape mismatch");
        let wv = self.value(w);
        let xv = self.value(x);
        let mut out = Tensor::zeros(blocks * h, k);
        for blk in 0..blocks {
            for i in 0..h {
                let wrow = wv.row(i);
                let orow = &mut out.as_mut_slice()[(blk * h + i) * k..(blk * h + i + 1) * k];
                for (jj, &wvv) in wrow.iter().enumerate() {
                    if wvv == 0.0 {
                        continue;
                    }
                    let xrow = xv.row(blk * q + jj);
                    for (o, &xe) in orow.iter_mut().zip(xrow) {
                        *o += wvv * xe;
                    }
                }
            }
        }
        self.push_op(&[w, x], out, move |g, vals, ctx| {
            let wv = &vals[w.0];
            let xv = &vals[x.0];
            // dW = Σ_b G_b X_b^T ; dX_b = W^T G_b.
            let mut dw = Tensor::zeros(h, q);
            let mut dx = Tensor::zeros(blocks * q, k);
            for blk in 0..blocks {
                for i in 0..h {
                    let grow = g.row(blk * h + i);
                    for jj in 0..q {
                        let xrow = xv.row(blk * q + jj);
                        let dot: f32 = grow.iter().zip(xrow).map(|(&a, &b)| a * b).sum();
                        let cur = dw.get(i, jj);
                        dw.set(i, jj, cur + dot);
                        let wvv = wv.get(i, jj);
                        if wvv != 0.0 {
                            let dxrow = dx.row_mut(blk * q + jj);
                            for (d, &gv) in dxrow.iter_mut().zip(grow) {
                                *d += wvv * gv;
                            }
                        }
                    }
                }
            }
            ctx.accum(w, dw);
            ctx.accum(x, dx);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check;
    use miss_tensor::Tensor;

    fn input(r: usize, c: usize, seed: f32) -> Tensor {
        Tensor::from_fn(r, c, |i, j| {
            0.19 * (i as f32) - 0.13 * (j as f32) + 0.07 * seed
        })
    }

    #[test]
    fn grad_bmm_nt() {
        // blocks=2, p=2, q=3, k=4
        check(
            &[input(4, 4, 1.0), input(6, 4, 2.0)],
            |t, vs| {
                let y = t.bmm_nt(vs[0], vs[1], 2);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_bmm_nn() {
        // blocks=2, p=2, q=3, k=4
        check(
            &[input(4, 3, 1.5), input(6, 4, 2.5)],
            |t, vs| {
                let y = t.bmm_nn(vs[0], vs[1], 2);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_bmm_param_nn() {
        // blocks=3, h=2, q=3, k=2
        check(
            &[input(2, 3, 0.5), input(9, 2, 1.7)],
            |t, vs| {
                let y = t.bmm_param_nn(vs[0], vs[1], 3);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn bmm_param_forward_matches_manual() {
        let mut t = crate::Tape::new();
        let w = t.constant(Tensor::from_vec(1, 2, vec![2.0, -1.0]));
        let x = t.constant(Tensor::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]));
        let y = t.bmm_param_nn(w, x, 2);
        // block0: 2*1 - 1*2 = 0 ; block1: 2*3 - 1*4 = 2
        assert_eq!(t.value(y).as_slice(), &[0.0, 2.0]);
    }
}
