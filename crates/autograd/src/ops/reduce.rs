//! Reductions and row-wise numerics (softmax, log-sum-exp, normalisation).

use crate::tape::{Tape, Var};
use miss_tensor::Tensor;

impl Tape {
    /// Sum of all elements as a `1×1` scalar.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let (r, c) = self.shape(x);
        let value = Tensor::scalar(self.value(x).sum_all());
        self.push_op(&[x], value, move |g, _vals, ctx| {
            ctx.accum(x, Tensor::full(r, c, g.item()));
        })
    }

    /// Mean of all elements as a `1×1` scalar.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let (r, c) = self.shape(x);
        let n = (r * c) as f32;
        let value = Tensor::scalar(self.value(x).mean_all());
        self.push_op(&[x], value, move |g, _vals, ctx| {
            ctx.accum(x, Tensor::full(r, c, g.item() / n));
        })
    }

    /// Row sums as an `R×1` column.
    pub fn row_sum(&mut self, x: Var) -> Var {
        let (r, c) = self.shape(x);
        let value = self.value(x).row_sum();
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                let gi = g.get(i, 0);
                for v in dx.row_mut(i) {
                    *v = gi;
                }
            }
            ctx.accum(x, dx);
        })
    }

    /// Row means as an `R×1` column.
    pub fn row_mean(&mut self, x: Var) -> Var {
        let (_, c) = self.shape(x);
        let s = self.row_sum(x);
        self.scale(s, 1.0 / c as f32)
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let value = self.value(x).row_softmax();
        let out_slot = self.len();
        self.push_op(&[x], value, move |g, vals, ctx| {
            let y = &vals[out_slot];
            let (r, c) = y.shape();
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                let yrow = y.row(i);
                let grow = g.row(i);
                let dot: f32 = yrow.iter().zip(grow).map(|(&a, &b)| a * b).sum();
                for ((d, &yv), &gv) in dx.row_mut(i).iter_mut().zip(yrow).zip(grow) {
                    *d = (gv - dot) * yv;
                }
            }
            ctx.accum(x, dx);
        })
    }

    /// Numerically stable row-wise log-sum-exp as an `R×1` column.
    pub fn logsumexp_rows(&mut self, x: Var) -> Var {
        let value = self.value(x).row_logsumexp();
        self.push_op(&[x], value, move |g, vals, ctx| {
            // d/dx_ij = softmax(x)_ij * g_i
            let sm = vals[x.0].row_softmax();
            ctx.accum(x, sm.mul_col_broadcast(g));
        })
    }

    /// Row-wise L2 normalisation `y = x / max(‖x‖, eps)`.
    pub fn l2_normalize_rows(&mut self, x: Var, eps: f32) -> Var {
        let norms = self.value(x).row_l2_norm(eps);
        let inv = norms.map(|n| 1.0 / n);
        let value = self.value(x).mul_col_broadcast(&inv);
        let out_slot = self.len();
        self.push_op(&[x], value, move |g, vals, ctx| {
            let y = &vals[out_slot];
            let (r, c) = y.shape();
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                let yrow = y.row(i);
                let grow = g.row(i);
                let n = 1.0 / inv.get(i, 0);
                let dot: f32 = yrow.iter().zip(grow).map(|(&a, &b)| a * b).sum();
                for ((d, &yv), &gv) in dx.row_mut(i).iter_mut().zip(yrow).zip(grow) {
                    *d = (gv - yv * dot) / n;
                }
            }
            ctx.accum(x, dx);
        })
    }

    /// Diagonal of a square matrix as a `B×1` column.
    pub fn diag(&mut self, x: Var) -> Var {
        let (r, c) = self.shape(x);
        assert_eq!(r, c, "diag needs a square matrix");
        let xv = self.value(x);
        let value = Tensor::from_vec(r, 1, (0..r).map(|i| xv.get(i, i)).collect());
        self.push_op(&[x], value, move |g, _vals, ctx| {
            let mut dx = Tensor::zeros(r, c);
            for i in 0..r {
                dx.set(i, i, g.get(i, 0));
            }
            ctx.accum(x, dx);
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check;
    use miss_tensor::Tensor;

    fn input(r: usize, c: usize) -> Tensor {
        Tensor::from_fn(r, c, |i, j| 0.31 * (i as f32) - 0.17 * (j as f32) + 0.05)
    }

    #[test]
    fn grad_sum_mean() {
        check(
            &[input(2, 3)],
            |t, vs| t.sum_all(vs[0]),
            5e-2,
        );
        check(
            &[input(2, 3)],
            |t, vs| t.mean_all(vs[0]),
            5e-2,
        );
    }

    #[test]
    fn grad_row_sum() {
        check(
            &[input(3, 4)],
            |t, vs| {
                let s = t.row_sum(vs[0]);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        check(
            &[input(3, 5)],
            |t, vs| {
                let y = t.softmax_rows(vs[0]);
                // weight the entries so the gradient is not trivially zero
                let w = Tensor::from_fn(3, 5, |i, j| ((i + 2 * j) % 3) as f32 - 1.0);
                let wc = t.constant(w);
                let p = t.mul(y, wc);
                t.sum_all(p)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_logsumexp() {
        check(
            &[input(4, 3)],
            |t, vs| {
                let y = t.logsumexp_rows(vs[0]);
                t.sum_all(y)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_l2_normalize() {
        check(
            &[input(3, 4)],
            |t, vs| {
                let y = t.l2_normalize_rows(vs[0], 1e-8);
                let w = Tensor::from_fn(3, 4, |i, j| 0.5 + ((i * j) % 2) as f32);
                let wc = t.constant(w);
                let p = t.mul(y, wc);
                t.sum_all(p)
            },
            5e-2,
        );
    }

    #[test]
    fn grad_diag() {
        check(
            &[input(4, 4)],
            |t, vs| {
                let d = t.diag(vs[0]);
                let sq = t.mul(d, d);
                t.sum_all(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = crate::Tape::new();
        let x = t.constant(input(2, 6));
        let y = t.softmax_rows(x);
        for i in 0..2 {
            let s: f32 = t.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
