//! Tape-based reverse-mode automatic differentiation over [`miss_tensor::Tensor`].
//!
//! A [`Tape`] records a forward computation as an arena of values plus, for
//! each non-leaf value, a boxed backward closure. Calling [`Tape::backward`]
//! walks the arena in reverse creation order (which is a valid reverse
//! topological order, since an op can only consume values created before it)
//! and accumulates gradients.
//!
//! Design notes:
//! - [`Var`] is a `Copy` index newtype into the tape arena — no `Rc`/`RefCell`
//!   graph, no lifetimes in user code.
//! - Values that do not require gradients (mini-batch inputs, masks) carry no
//!   backward node, so constants are free in the backward pass.
//! - Embedding tables are *not* stored on the tape. The lookup op
//!   [`Tape::embed`] receives already-gathered rows plus a `(table_id, row
//!   indices)` tag; its backward appends `(table_id, indices, grad_rows)` to a
//!   sparse-gradient sink that the optimiser consumes directly. This keeps a
//!   training step O(touched rows), never O(vocabulary).
//! - Every op's gradient is verified against central finite differences in
//!   this crate's tests (see [`gradcheck`]).

pub mod gradcheck;
mod ops;
mod tape;

pub use ops::LinearAct;
pub use tape::{Grads, SparseGrad, Tape, Var};
