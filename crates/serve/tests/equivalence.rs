//! The serving determinism contract (DESIGN.md §10), pinned bitwise:
//!
//! 1. the frozen forward reproduces the training-graph forward bit-for-bit
//!    for every freezable architecture (DIN, DIEN, IPNN), with and without
//!    MISS attached, at any batch size and `MISS_THREADS`;
//! 2. micro-batched scoring is bit-identical to scoring each request alone,
//!    for any request-arrival grouping;
//! 3. the frozen eval path reproduces `miss_trainer::evaluate` exactly;
//! 4. freezing a codec round-tripped checkpoint changes nothing.

use miss_data::{request_stream, Batch, Dataset, Sample, Split, World, WorldConfig};
use miss_models::{CtrModel, ForwardOpts};
use miss_nn::{Graph, ParamStore};
use miss_serve::{evaluate_frozen, load_frozen, FrozenArch, FrozenModel, ScoreEngine};
use miss_trainer::{evaluate, BaseModel, Experiment, SslKind};
use miss_util::Rng;

const SEED: u64 = 42;

const FREEZABLE: [(BaseModel, FrozenArch); 3] = [
    (BaseModel::Din, FrozenArch::Din),
    (BaseModel::Dien, FrozenArch::Dien),
    (BaseModel::Ipnn, FrozenArch::Ipnn),
];

fn world_and_dataset() -> (World, Dataset) {
    let world = World::generate(WorldConfig::tiny(), 7);
    let dataset = Dataset::from_world(&world, 7);
    (world, dataset)
}

fn ssl_kinds() -> [SslKind; 2] {
    [SslKind::None, SslKind::Miss(miss_core::MissConfig::default())]
}

/// Eval-mode logits off the training tape, as raw f32s.
fn graph_logits(model: &dyn CtrModel, store: &ParamStore, batch: &Batch) -> Vec<f32> {
    let mut rng = Rng::new(0);
    let mut g = Graph::new(store);
    let mut opts = ForwardOpts {
        training: false,
        rng: &mut rng,
    };
    let logits = model.forward(&mut g, store, batch, &mut opts);
    g.tape.value(logits).as_slice().to_vec()
}

fn batch_of(samples: &[Sample], schema: &miss_data::Schema) -> Batch {
    let refs: Vec<&Sample> = samples.iter().collect();
    Batch::from_samples(&refs, schema)
}

#[test]
fn frozen_forward_bitwise_matches_graph() {
    let (_world, dataset) = world_and_dataset();
    let n = dataset.test.len().min(48);
    for (base, arch) in FREEZABLE {
        for ssl in ssl_kinds() {
            let exp = Experiment::new(base, ssl);
            let (store, model) = exp.build_model(&dataset.schema, SEED);
            let frozen = FrozenModel::freeze(&store, &dataset.schema, arch).unwrap();
            for bs in [1usize, 17, 48] {
                for lo in (0..n).step_by(bs) {
                    let hi = (lo + bs).min(n);
                    let batch = batch_of(&dataset.test[lo..hi], &dataset.schema);
                    let want = graph_logits(model.as_ref(), &store, &batch);
                    for threads in [1usize, 2, 4] {
                        let got = miss_parallel::with_threads(threads, || frozen.forward(&batch))
                            .expect("frozen forward");
                        assert_eq!(
                            got.as_slice(),
                            &want[..],
                            "{} bs={bs} lo={lo} threads={threads}",
                            exp.label(),
                        );
                    }
                }
            }
        }
    }
}

/// Non-default widths: freeze derives every dimension from the store, so
/// odd embed dims and ragged towers must freeze and match bit-for-bit too.
#[test]
fn frozen_forward_matches_graph_at_odd_widths() {
    let (_world, dataset) = world_and_dataset();
    let n = dataset.test.len().min(24);
    for (base, arch) in FREEZABLE {
        for (embed_dim, mlp_sizes) in [(6usize, vec![17, 5, 1]), (13, vec![33, 1])] {
            let mut exp = Experiment::new(base, SslKind::None);
            exp.model_cfg.embed_dim = embed_dim;
            exp.model_cfg.mlp_sizes = mlp_sizes.clone();
            let (store, model) = exp.build_model(&dataset.schema, SEED);
            let frozen = FrozenModel::freeze(&store, &dataset.schema, arch).unwrap();
            let batch = batch_of(&dataset.test[..n], &dataset.schema);
            let want = graph_logits(model.as_ref(), &store, &batch);
            let got = frozen.forward(&batch).expect("frozen forward");
            assert_eq!(
                got.as_slice(),
                &want[..],
                "{} embed_dim={embed_dim} mlp={mlp_sizes:?}",
                base.label()
            );
        }
    }
}

#[test]
fn micro_batching_never_changes_a_score() {
    let (world, dataset) = world_and_dataset();
    for (base, arch) in FREEZABLE {
        let exp = Experiment::new(base, SslKind::None);
        let (store, _model) = exp.build_model(&dataset.schema, SEED);
        let frozen = FrozenModel::freeze(&store, &dataset.schema, arch).unwrap();
        // Ragged candidate counts: three interleaved streams so batch
        // boundaries land mid-queue at every max_batch below.
        let mut stream = Vec::new();
        for (i, c) in [1usize, 5, 3].iter().cycle().take(24).enumerate() {
            stream.extend(request_stream(
                &world,
                &dataset,
                Split::Test,
                1,
                *c,
                0x9000 + i as u64,
            ));
        }
        // Ground truth: every request scored entirely alone.
        let mut solo = Vec::new();
        for r in &stream {
            solo.extend(
                ScoreEngine::new(&frozen, 1)
                    .score_queue(std::slice::from_ref(r))
                    .expect("solo scoring"),
            );
        }
        for mb in [1usize, 3, 8, 64, 4096] {
            let engine = ScoreEngine::new(&frozen, mb);
            for threads in [1usize, 2, 4] {
                let got = miss_parallel::with_threads(threads, || engine.score_queue(&stream))
                    .expect("queue scoring");
                assert_eq!(
                    got, solo,
                    "{} mb={mb} threads={threads}",
                    base.label()
                );
            }
            // The grouping rule itself: batches partition the queue in order
            // and only an oversized request may exceed max_batch.
            let batches = engine.form_batches(&stream);
            let mut next = 0;
            for &(r0, r1) in &batches {
                assert_eq!(r0, next, "batches must partition the queue in order");
                let cands: usize = stream[r0..r1].iter().map(|r| r.num_candidates()).sum();
                assert!(
                    cands <= mb || r1 - r0 == 1,
                    "batch [{r0},{r1}) holds {cands} > max_batch {mb}"
                );
                next = r1;
            }
            assert_eq!(next, stream.len());
        }
    }
}

#[test]
fn frozen_eval_matches_graph_eval() {
    let (_world, dataset) = world_and_dataset();
    for (base, arch) in FREEZABLE {
        for ssl in ssl_kinds() {
            let exp = Experiment::new(base, ssl);
            let (store, model) = exp.build_model(&dataset.schema, SEED);
            let frozen = FrozenModel::freeze(&store, &dataset.schema, arch).unwrap();
            for bs in [13usize, 64] {
                let want = evaluate(model.as_ref(), &store, &dataset.test, &dataset.schema, bs);
                let got = evaluate_frozen(&frozen, &dataset.test, &dataset.schema, bs)
                    .expect("frozen eval");
                assert_eq!(got, want, "{} bs={bs}", base.label());
            }
        }
    }
}

#[test]
fn codec_round_trip_freezes_identically() {
    let (_world, dataset) = world_and_dataset();
    let path = std::env::temp_dir().join(format!("miss_serve_eq_{}.ckpt", std::process::id()));
    for (base, arch) in FREEZABLE {
        for ssl in ssl_kinds() {
            let exp = Experiment::new(base, ssl);
            let (store, _model) = exp.build_model(&dataset.schema, SEED);
            let direct = FrozenModel::freeze(&store, &dataset.schema, arch).unwrap();
            miss_codec::save_to_path(&path, &store, None).unwrap();
            let (loaded, progress) = load_frozen(&path, &exp, &dataset.schema, SEED).unwrap();
            assert!(progress.is_none());
            let batch = batch_of(&dataset.test[..dataset.test.len().min(32)], &dataset.schema);
            assert_eq!(
                loaded.forward(&batch).unwrap().as_slice(),
                direct.forward(&batch).unwrap().as_slice(),
                "{} round-trip",
                base.label()
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}
