//! Tape-free forward passes over frozen models.
//!
//! Every function here replicates its training counterpart *op-for-op*:
//! each autograd tape op computes its forward by delegating to one
//! `miss_tensor` method, so calling those same methods in the same order on
//! the same inputs reproduces the training-graph logits bit-for-bit (the
//! contract `tests/equivalence.rs` pins for DIN/DIEN/IPNN ± MISS). Dropout
//! is the identity in eval mode and DIEN's auxiliary-loss state is a
//! training-only side channel, so neither appears here.
//!
//! **Panic-freedom.** A batch is untrusted serving input, so
//! [`FrozenModel::forward`] validates it against the schema once
//! ([`check_batch`]) and returns [`MissError::BadRequest`] on any mismatch;
//! embedding ids are range-checked inside the gather. The per-architecture
//! forwards then index freely under `debug_assert`s restating the
//! already-checked invariants — the R7 `panic-free-serving` audit rule
//! walks everything reachable from here and holds this file to that
//! contract.

use crate::freeze::{FrozenDien, FrozenDin, FrozenIpnn, FrozenModel, FrozenTables};
use miss_data::{Batch, Schema};
use miss_tensor::Tensor;
use miss_util::{MissError, MissResult};

impl FrozenModel {
    /// CTR logits (`B×1`) for a batch, bit-identical to the training-graph
    /// eval-mode forward. A batch that does not match the frozen schema is
    /// a [`MissError::BadRequest`]; an embedding id outside its vocabulary
    /// likewise — scoring never panics on request content.
    pub fn forward(&self, batch: &Batch) -> MissResult<Tensor> {
        check_batch(batch, self.schema())?;
        match self {
            FrozenModel::Din(m) => m.forward(batch),
            FrozenModel::Dien(m) => m.forward(batch),
            FrozenModel::Ipnn(m) => m.forward(batch),
        }
    }
}

/// Validate a batch's layout against the schema: field arity, sequence
/// length, and the flattened `B·L` extents. After this passes, every index
/// the per-architecture forwards take is in bounds (ids themselves are
/// checked per-gather against their vocabulary).
fn check_batch(batch: &Batch, schema: &Schema) -> MissResult<()> {
    let bl = batch.size * batch.seq_len;
    if batch.cat.len() != schema.num_cat() {
        return Err(MissError::bad_request(format!(
            "batch has {} categorical fields, schema has {}",
            batch.cat.len(),
            schema.num_cat()
        )));
    }
    if batch.seq.len() != schema.num_seq() {
        return Err(MissError::bad_request(format!(
            "batch has {} sequential fields, schema has {}",
            batch.seq.len(),
            schema.num_seq()
        )));
    }
    if batch.seq_len != schema.seq_len {
        return Err(MissError::bad_request(format!(
            "batch sequence length {} != schema sequence length {}",
            batch.seq_len, schema.seq_len
        )));
    }
    if batch.mask.len() != bl {
        return Err(MissError::bad_request(format!(
            "mask has {} entries for a {}x{} batch",
            batch.mask.len(),
            batch.size,
            batch.seq_len
        )));
    }
    for (f, ids) in batch.cat.iter().enumerate() {
        if ids.len() != batch.size {
            return Err(MissError::bad_request(format!(
                "categorical field {f} has {} ids for {} samples",
                ids.len(),
                batch.size
            )));
        }
    }
    for (j, ids) in batch.seq.iter().enumerate() {
        if ids.len() != bl {
            return Err(MissError::bad_request(format!(
                "sequential field {j} has {} ids, expected {}",
                ids.len(),
                bl
            )));
        }
    }
    Ok(())
}

/// The batch validity mask as a `(B·L)×1` column, as the embedding layer
/// builds it.
fn mask_col(batch: &Batch) -> Tensor {
    Tensor::from_vec(batch.mask.len(), 1, batch.mask.clone())
}

/// Embed one sequential field: gather then zero padded rows via the mask.
fn embed_seq(
    emb: &FrozenTables,
    batch: &Batch,
    schema_vocab: usize,
    field: usize,
) -> MissResult<Tensor> {
    debug_assert!(field < batch.seq.len(), "check_batch matched field arity");
    let e = emb.gather(schema_vocab, &batch.seq[field])?;
    Ok(e.mul_col_broadcast(&mask_col(batch)))
}

/// Every categorical field's embedding, in schema order.
fn embed_all_cat(
    emb: &FrozenTables,
    batch: &Batch,
    cat_fields: &[(String, usize)],
) -> MissResult<Vec<Tensor>> {
    debug_assert_eq!(batch.cat.len(), cat_fields.len(), "check_batch matched field arity");
    cat_fields
        .iter()
        .enumerate()
        .map(|(f, &(_, vocab))| emb.gather(vocab, &batch.cat[f]))
        .collect()
}

/// Masked mean pooling of a `(B·L)×K` sequence embedding into `B×K`.
fn mean_pool(seq_emb: &Tensor, batch: &Batch) -> Tensor {
    let b = batch.size;
    let l = batch.seq_len;
    let ones = Tensor::full(b, l, 1.0);
    let sums = ones.bmm_nn(seq_emb, b);
    let inv = Tensor::from_vec(
        b,
        1,
        (0..b).map(|i| 1.0 / batch.hist_len(i).max(1) as f32).collect(),
    );
    sums.mul_col_broadcast(&inv)
}

/// Row softmax with −∞ masking of padded positions.
fn masked_softmax_rows(scores: &Tensor, mask: &[f32]) -> Tensor {
    let (b, l) = scores.shape();
    let neg = Tensor::from_vec(
        b,
        l,
        mask.iter().map(|&m| if m > 0.0 { 0.0 } else { -1e9 }).collect(),
    );
    scores.add(&neg).row_softmax()
}

/// DIN's local activation unit pooling over the behaviour sequence.
fn attention_pool(
    seq_emb: &Tensor,
    cand_emb: &Tensor,
    batch: &Batch,
    att_mlp: &crate::freeze::FrozenMlp,
) -> Tensor {
    let b = batch.size;
    let l = batch.seq_len;
    let cand_t = cand_emb.repeat_rows_interleave(l);
    let diff = seq_emb.sub(&cand_t);
    let prod = seq_emb.mul(&cand_t);
    let att_in = Tensor::concat_cols(&[seq_emb, &cand_t, &diff, &prod]);
    let scores = att_mlp.forward(&att_in); // (B·L)×1
    let scores2d = scores.reshape(b, l);
    let weights = masked_softmax_rows(&scores2d, &batch.mask);
    weights.bmm_nn(seq_emb, b)
}

impl FrozenDin {
    fn forward(&self, batch: &Batch) -> MissResult<Tensor> {
        // check_batch matched the batch to self.schema, and freeze()
        // validated cand_for_seq against cat_fields.
        debug_assert_eq!(self.cand_for_seq.len(), self.schema.num_seq());
        let mut parts = embed_all_cat(&self.emb, batch, &self.schema.cat_fields)?;
        for j in 0..self.schema.num_seq() {
            let seq = embed_seq(&self.emb, batch, self.schema.seq_fields[j].vocab, j)?;
            let cand = parts[self.cand_for_seq[j]].clone();
            let pooled = attention_pool(&seq, &cand, batch, &self.att[j]);
            let mean = mean_pool(&seq, batch);
            let interact_att = pooled.mul(&cand);
            let interact_mean = mean.mul(&cand);
            let match_att = interact_att.row_sum();
            let match_mean = interact_mean.row_sum();
            parts.push(pooled);
            parts.push(mean);
            parts.push(interact_att);
            parts.push(match_att);
            parts.push(match_mean);
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let flat = Tensor::concat_cols(&refs);
        Ok(self.deep.forward(&flat))
    }
}

impl FrozenDien {
    fn forward(&self, batch: &Batch) -> MissResult<Tensor> {
        let b = batch.size;
        let l = batch.seq_len;
        let k = self.emb.dim;
        // check_batch matched the batch to self.schema; DIEN's freeze path
        // requires the item sequence (seq 0), its candidate (cat 1), and
        // the category sequence (seq 1), which the training constructor
        // registered against this same schema.
        debug_assert!(self.schema.num_seq() >= 2 && self.schema.num_cat() >= 2);
        let seq = embed_seq(&self.emb, batch, self.schema.seq_fields[0].vocab, 0)?;
        let cand = self.emb.gather(self.schema.cat_fields[1].1, &batch.cat[1])?;

        // Interest extraction: masked GRU over the sequence. `step_rows` is
        // a reused arena — the only per-step allocations left are the
        // tensor results themselves.
        let h0 = Tensor::zeros(b, k);
        let mut hidden: Vec<Tensor> = Vec::with_capacity(l);
        let mut step_rows = vec![0usize; b];
        for t in 0..l {
            for (i, r) in step_rows.iter_mut().enumerate() {
                *r = i * l + t;
            }
            let x_t = seq.gather_rows(&step_rows);
            let h_prev = hidden.last().unwrap_or(&h0);
            let h_new = self.gru.step(&x_t, h_prev);
            let m = step_mask(batch, t);
            let keep_new = h_new.mul_col_broadcast(&m);
            let inv = m.scale(-1.0).map(|v| v + 1.0);
            let keep_old = h_prev.mul_col_broadcast(&inv);
            hidden.push(keep_new.add(&keep_old));
        }

        // Attention of the candidate over extracted interests.
        let score_cols: Vec<Tensor> = hidden.iter().map(|ht| ht.mul(&cand).row_sum()).collect();
        let score_refs: Vec<&Tensor> = score_cols.iter().collect();
        let scores = Tensor::concat_cols(&score_refs); // B×L
        let weights = masked_softmax_rows(&scores, &batch.mask);

        // Interest evolution with AUGRU.
        let mut hv = Tensor::zeros(b, k);
        for (t, x_t) in hidden.iter().enumerate() {
            let a_t = weights.slice_cols(t, t + 1);
            let h_new = self.augru.step_attn(x_t, &hv, &a_t);
            let m = step_mask(batch, t);
            let keep_new = h_new.mul_col_broadcast(&m);
            let inv = m.scale(-1.0).map(|v| v + 1.0);
            let keep_old = hv.mul_col_broadcast(&inv);
            hv = keep_new.add(&keep_old);
        }

        let mut parts = embed_all_cat(&self.emb, batch, &self.schema.cat_fields)?;
        let cat_seq = embed_seq(&self.emb, batch, self.schema.seq_fields[1].vocab, 1)?;
        parts.push(mean_pool(&cat_seq, batch));
        parts.push(hv);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let flat = Tensor::concat_cols(&refs);
        Ok(self.deep.forward(&flat))
    }
}

/// Step-`t` validity mask as a `B×1` column.
fn step_mask(batch: &Batch, t: usize) -> Tensor {
    let b = batch.size;
    let l = batch.seq_len;
    debug_assert!(t < l && batch.mask.len() == b * l, "check_batch sized the mask");
    Tensor::from_vec(b, 1, (0..b).map(|i| batch.mask[i * l + t]).collect())
}

impl FrozenIpnn {
    fn forward(&self, batch: &Batch) -> MissResult<Tensor> {
        // Field vectors: every categorical embedding plus every sequence
        // mean-pooled, in schema order. check_batch matched the batch to
        // self.schema, so the field indexing below is in bounds.
        debug_assert_eq!(batch.seq.len(), self.schema.num_seq());
        let mut fields = embed_all_cat(&self.emb, batch, &self.schema.cat_fields)?;
        for j in 0..self.schema.num_seq() {
            let seq = embed_seq(&self.emb, batch, self.schema.seq_fields[j].vocab, j)?;
            fields.push(mean_pool(&seq, batch));
        }
        // z-part: raw field vectors; p-part: all pairwise inner products.
        let mut parts: Vec<Tensor> = fields.clone();
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                parts.push(fields[i].mul(&fields[j]).row_sum());
            }
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let flat = Tensor::concat_cols(&refs);
        Ok(self.deep.forward(&flat))
    }
}
