//! Frozen-graph inference for the MISS reproduction: the serving-side
//! counterpart to the training stack.
//!
//! Three pieces (DESIGN.md §10):
//!
//! - **Freeze** ([`FrozenModel::freeze`], [`load_frozen`]): compile a
//!   trained `ParamStore` — live or loaded from a miss-codec checkpoint —
//!   into contiguous frozen layers with GEMM panels pre-packed once, fused
//!   bias/activation epilogues, and no autograd tape.
//! - **Score** ([`ScoreEngine`]): micro-batch concurrent `(user,
//!   candidates[])` requests into batched forwards over the miss-parallel
//!   pool, under a deterministic batch-formation rule (flush at `max_batch`
//!   candidates or queue drain — never wall-clock timers), so scores are
//!   bit-identical to scoring each request alone at any thread count.
//! - **Evaluate** ([`evaluate_frozen`]): the trainer's eval metrics through
//!   the frozen forward — same chunking, same bits, minus the per-batch
//!   packing the training-graph eval pays.
//!
//! The determinism contract throughout: a candidate's score is a pure
//! function of (checkpoint bytes, sample, detected ISA) — never of batch
//! composition, `MISS_THREADS`, or request arrival grouping.

mod engine;
mod forward;
mod freeze;

pub use engine::{evaluate_frozen, ScoreEngine};
pub use freeze::{load_frozen, FrozenArch, FrozenModel};
