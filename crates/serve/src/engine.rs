//! The scoring engine: deterministic request micro-batching over the
//! frozen forward, plus the frozen evaluation path.
//!
//! **Batch formation is a pure function of the queue** (DESIGN.md §10):
//! requests are taken in arrival order and a batch is flushed when adding
//! the next request would push it past `max_batch` candidates, or when the
//! queue drains. No wall-clock timers, no thread-dependent state — the same
//! queue always forms the same batches. A request larger than `max_batch`
//! becomes a batch of its own rather than splitting.
//!
//! **Batching never changes a score.** Every op in the frozen forward is
//! row-independent (GEMM accumulation chains, softmax rows, bmm blocks and
//! gathers are all per-sample), so a candidate's score does not depend on
//! which other candidates share its batch — micro-batched results are
//! bit-identical to scoring each request alone, which is what makes
//! batching a pure throughput knob. `tests/equivalence.rs` pins this for
//! arbitrary request groupings and `MISS_THREADS` {1, 2, 4}.

use crate::freeze::FrozenModel;
use miss_data::{Batch, Sample, Schema, ScoreRequest};
use miss_trainer::EvalResult;
use miss_util::{profile, MissError, MissResult};

/// Micro-batching scoring engine over a frozen model.
pub struct ScoreEngine<'a> {
    model: &'a FrozenModel,
    max_batch: usize,
}

impl<'a> ScoreEngine<'a> {
    /// Create an engine flushing batches at `max_batch` candidates.
    /// `max_batch = 1` degenerates to one-request-at-a-time scoring (the
    /// bench's solo baseline) through the identical code path.
    pub fn new(model: &'a FrozenModel, max_batch: usize) -> ScoreEngine<'a> {
        assert!(max_batch > 0, "max_batch must be positive");
        ScoreEngine { model, max_batch }
    }

    /// The deterministic batch-formation rule: request index ranges
    /// `[start, end)` such that each batch holds at most `max_batch`
    /// candidates (unless a single oversized request forces more). Public
    /// so the serving bench can time batches individually; scoring goes
    /// through [`ScoreEngine::score_queue`].
    pub fn form_batches(&self, requests: &[ScoreRequest]) -> Vec<(usize, usize)> {
        let _bf = profile::scope("serve.batch_form");
        let mut batches = Vec::new();
        let mut start = 0;
        let mut filled = 0;
        for (i, r) in requests.iter().enumerate() {
            let c = r.num_candidates();
            if filled > 0 && filled + c > self.max_batch {
                batches.push((start, i));
                start = i;
                filled = 0;
            }
            filled += c;
        }
        if filled > 0 {
            batches.push((start, requests.len()));
        }
        batches
    }

    /// Score a queue of requests. Returns the sigmoid scores of every
    /// candidate, flattened in (request, candidate) order — the caller
    /// slices per-request runs off with each request's candidate count.
    ///
    /// Batches score concurrently over the `miss-parallel` pool and the
    /// per-batch score vectors concatenate in batch order, so the output is
    /// bit-identical for any `MISS_THREADS` value *and* any `max_batch`.
    ///
    /// A malformed request ([`MissError::BadRequest`]: wrong field arity,
    /// or an id outside its vocabulary) is a typed error, never a panic —
    /// deterministically the error of the *earliest* offending batch, for
    /// any thread count.
    pub fn score_queue(&self, requests: &[ScoreRequest]) -> MissResult<Vec<f32>> {
        let batches = self.form_batches(requests);
        let per_batch = miss_parallel::par_map(batches.len(), |bi| {
            // form_batches yields in-range, contiguous [r0, r1) windows.
            debug_assert!(bi < batches.len());
            let (r0, r1) = batches[bi];
            self.score_batch(&requests[r0..r1])
        });
        let mut all = Vec::new();
        for v in per_batch {
            all.extend_from_slice(&v?);
        }
        Ok(all)
    }

    /// Score one formed batch: validate, assemble, forward, sigmoid.
    fn score_batch(&self, requests: &[ScoreRequest]) -> MissResult<Vec<f32>> {
        let schema = self.model.schema();
        for (ri, r) in requests.iter().enumerate() {
            for s in &r.samples {
                // Batch::from_samples asserts these arities (its callers
                // hand it trusted dataset samples); requests are untrusted,
                // so reject with a typed error before assembly.
                if s.cat.len() != schema.num_cat() || s.hist.len() != schema.num_seq() {
                    return Err(MissError::bad_request(format!(
                        "request {ri}: sample has {} categorical / {} sequential \
                         fields, schema has {} / {}",
                        s.cat.len(),
                        s.hist.len(),
                        schema.num_cat(),
                        schema.num_seq()
                    )));
                }
            }
        }
        let refs: Vec<&Sample> = requests.iter().flat_map(|r| r.samples.iter()).collect();
        let batch = Batch::from_samples(&refs, schema);
        let logits = self.model.forward(&batch)?;
        let _ep = profile::scope("serve.epilogue");
        let mut out = Vec::with_capacity(refs.len());
        miss_util::sigmoid_extend(logits.as_slice(), &mut out);
        Ok(out)
    }
}

/// Sigmoid scores for every sample through the frozen forward, mirroring
/// the trainer's eval chunking exactly (same chunk boundaries, same
/// concatenation order), so metrics match `miss_trainer::evaluate`
/// bit-for-bit while skipping the per-call GEMM packing and tape overhead.
fn frozen_scores(
    model: &FrozenModel,
    samples: &[Sample],
    schema: &Schema,
    batch_size: usize,
) -> MissResult<Vec<f32>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = samples.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let nb = n.div_ceil(batch_size);
    let chunk = miss_parallel::fixed_chunk_len(nb, 1);
    let n_chunks = nb.div_ceil(chunk);
    let per_chunk = miss_parallel::par_map(n_chunks, |ci| -> MissResult<Vec<f32>> {
        let b0 = ci * chunk;
        let b1 = (b0 + chunk).min(nb);
        let mut out = Vec::with_capacity((b1 - b0) * batch_size);
        for bi in b0..b1 {
            let lo = bi * batch_size;
            let hi = (lo + batch_size).min(n);
            let refs: Vec<&Sample> = samples[lo..hi].iter().collect();
            let batch = Batch::from_samples(&refs, schema);
            let logits = model.forward(&batch)?;
            miss_util::sigmoid_extend(logits.as_slice(), &mut out);
        }
        Ok(out)
    });
    let mut all = Vec::with_capacity(n);
    for v in per_chunk {
        let v: Vec<f32> = v?;
        all.extend_from_slice(&v);
    }
    Ok(all)
}

/// AUC / Logloss over a split through the frozen forward. Bit-identical to
/// `miss_trainer::evaluate` on the store the model froze from, without
/// re-packing GEMM panels on every batch. Errors if the split does not
/// match the frozen schema (a dataset/checkpoint mismatch).
pub fn evaluate_frozen(
    model: &FrozenModel,
    samples: &[Sample],
    schema: &Schema,
    batch_size: usize,
) -> MissResult<EvalResult> {
    let scores = frozen_scores(model, samples, schema, batch_size)?;
    let labels: Vec<f32> = samples.iter().map(|s| s.label).collect();
    Ok(EvalResult {
        auc: miss_metrics::auc(&scores, &labels),
        logloss: miss_metrics::logloss(&scores, &labels),
    })
}
