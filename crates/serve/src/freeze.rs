//! The freeze step: compile a trained [`ParamStore`] into an
//! inference-optimized [`FrozenModel`].
//!
//! Freezing trades the training stack's generality for serving speed while
//! keeping the *bits* of every score:
//!
//! - **No tape.** The frozen forward calls the same `miss_tensor` methods
//!   the autograd ops delegate to, in the same order, so scores are bitwise
//!   identical to the training-graph forward — there is simply no gradient
//!   bookkeeping around them.
//! - **Pre-packed GEMM panels.** Every `Linear` weight is packed once at
//!   freeze time into the kernel's panel layout ([`PackedB`]); requests
//!   multiply against the packed panels directly and skip the per-call
//!   `pack_b_from_nn` the training path pays on every forward.
//! - **Fused epilogues.** Bias and activation ride in the GEMM accumulator
//!   store tail ([`GemmEpilogue`]), exactly as `tape.linear` fuses them.
//!
//! Freezing reads parameters *by name* from the store's views, so a store
//! that also carries MISS SSL parameters (a `--miss` checkpoint) freezes
//! fine — the extra parameters are ignored. A missing or mis-shaped
//! parameter is a typed [`MissError`], never a panic: checkpoints are
//! untrusted input (DESIGN.md §8).

use miss_data::Schema;
use miss_nn::ParamStore;
use miss_tensor::{GemmEpilogue, PackedB, Tensor};
use miss_util::{MissError, MissResult};

/// Fused activation of a frozen layer; mirrors the training stack's
/// `LinearAct` (tanh/PReLU layers never reach the frozen architectures).
#[derive(Clone, Copy, Debug)]
pub(crate) enum FrozenAct {
    /// Bias only.
    Identity,
    /// Bias + ReLU.
    Relu,
}

/// An affine layer compiled for inference: pre-packed weight panels, a
/// contiguous bias row, and the fused activation.
pub(crate) struct FrozenLinear {
    w: PackedB,
    bias: Vec<f32>,
    act: FrozenAct,
}

impl FrozenLinear {
    fn freeze(p: &Params<'_>, name: &str, act: FrozenAct) -> MissResult<FrozenLinear> {
        let w = p.dense(&format!("{name}.w"))?;
        let b = p.dense(&format!("{name}.b"))?;
        if b.shape() != (1, w.cols()) {
            return Err(MissError::ShapeMismatch {
                context: format!("frozen linear {name} bias"),
                expected: (1, w.cols()),
                got: b.shape(),
            });
        }
        Ok(FrozenLinear {
            w: PackedB::pack(w),
            bias: b.as_slice().to_vec(),
            act,
        })
    }

    /// One GEMM against the pre-packed panels with the fused epilogue —
    /// the same kernel call `tape.linear` makes, minus the pack.
    pub(crate) fn forward(&self, x: &Tensor) -> Tensor {
        let ep = match self.act {
            FrozenAct::Identity => GemmEpilogue::AddBias(&self.bias),
            FrozenAct::Relu => GemmEpilogue::AddBiasRelu(&self.bias),
        };
        x.matmul_nn_ep_prepacked(&self.w, ep)
    }
}

/// A frozen `relu_tower` MLP: ReLU hidden layers, linear output — the only
/// MLP shape the frozen architectures use.
pub(crate) struct FrozenMlp {
    layers: Vec<FrozenLinear>,
}

impl FrozenMlp {
    fn freeze(p: &Params<'_>, name: &str) -> MissResult<FrozenMlp> {
        let mut n = 0;
        while p.has_dense(&format!("{name}.l{n}.w")) {
            n += 1;
        }
        if n == 0 {
            return Err(MissError::UnknownParam {
                kind: "dense param",
                name: format!("{name}.l0.w"),
            });
        }
        let layers = (0..n)
            .map(|i| {
                let act = if i + 1 == n { FrozenAct::Identity } else { FrozenAct::Relu };
                FrozenLinear::freeze(p, &format!("{name}.l{i}"), act)
            })
            .collect::<MissResult<Vec<_>>>()?;
        Ok(FrozenMlp { layers })
    }

    /// Chain the layers; the hot path the serving profiler attributes to
    /// `serve.gemm`.
    pub(crate) fn forward(&self, x: &Tensor) -> Tensor {
        let _gemm = miss_util::profile::scope("serve.gemm");
        debug_assert!(!self.layers.is_empty(), "freeze() rejects zero-layer MLPs");
        let mut h = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }
}

/// Frozen GRU cell: six identity-epilogue affine gates plus the elementwise
/// gate math, replicating `miss_nn::GruCell` op-for-op on plain tensors.
pub(crate) struct FrozenGru {
    xz: FrozenLinear,
    hz: FrozenLinear,
    xr: FrozenLinear,
    hr: FrozenLinear,
    xh: FrozenLinear,
    hh: FrozenLinear,
}

impl FrozenGru {
    fn freeze(p: &Params<'_>, name: &str) -> MissResult<FrozenGru> {
        let gate = |g: &str| FrozenLinear::freeze(p, &format!("{name}.{g}"), FrozenAct::Identity);
        Ok(FrozenGru {
            xz: gate("xz")?,
            hz: gate("hz")?,
            xr: gate("xr")?,
            hr: gate("hr")?,
            xh: gate("xh")?,
            hh: gate("hh")?,
        })
    }

    /// `(z, h̃)` — the update gate and candidate state, in the training
    /// cell's exact op order (sigmoid/tanh applied after the gate sums).
    fn gates(&self, x: &Tensor, h: &Tensor) -> (Tensor, Tensor) {
        let z = self.xz.forward(x).add(&self.hz.forward(h)).map(miss_util::sigmoid);
        let r = self.xr.forward(x).add(&self.hr.forward(h)).map(miss_util::sigmoid);
        let rh = r.mul(h);
        let h_tilde = self.xh.forward(x).add(&self.hh.forward(&rh)).map(f32::tanh);
        (z, h_tilde)
    }

    /// Standard GRU step: `h' = (1−z)⊙h + z⊙h̃`.
    pub(crate) fn step(&self, x: &Tensor, h: &Tensor) -> Tensor {
        let (z, h_tilde) = self.gates(x, h);
        let one_minus_z = z.scale(-1.0).map(|v| v + 1.0);
        one_minus_z.mul(h).add(&z.mul(&h_tilde))
    }

    /// AUGRU step: update gate scaled by the per-sample attention column.
    pub(crate) fn step_attn(&self, x: &Tensor, h: &Tensor, att: &Tensor) -> Tensor {
        let (z, h_tilde) = self.gates(x, h);
        let z_att = z.mul_col_broadcast(att);
        let one_minus = z_att.scale(-1.0).map(|v| v + 1.0);
        one_minus.mul(h).add(&z_att.mul(&h_tilde))
    }
}

/// Frozen embedding tables: one contiguous `vocab_size×K` matrix per
/// vocabulary, cloned out of the store (lookups are row copies, so there is
/// no numeric transformation to fuse — just ownership).
pub(crate) struct FrozenTables {
    tables: Vec<Tensor>,
    /// Embedding dimension `K`.
    pub(crate) dim: usize,
}

impl FrozenTables {
    fn freeze(p: &Params<'_>, schema: &Schema, prefix: &str) -> MissResult<FrozenTables> {
        let mut tables = Vec::with_capacity(schema.vocabs.len());
        let mut dim = 0;
        for v in &schema.vocabs {
            let t = p.table(&format!("{prefix}.{}", v.name))?;
            if t.rows() != v.size {
                return Err(MissError::ShapeMismatch {
                    context: format!("frozen table {prefix}.{}", v.name),
                    expected: (v.size, t.cols()),
                    got: t.shape(),
                });
            }
            dim = t.cols();
            tables.push(t.clone());
        }
        Ok(FrozenTables { tables, dim })
    }

    /// Row-gather a vocabulary's table — bit-identical to the training
    /// path's `EmbeddingTable::gather`, but fallible: the ids arrive in
    /// untrusted score requests and the vocab index comes from an untrusted
    /// checkpoint's schema, so both are checked into typed errors instead
    /// of panics. Gathers straight off the `u32` ids — no per-call index
    /// buffer.
    pub(crate) fn gather(&self, vocab: usize, ids: &[u32]) -> MissResult<Tensor> {
        let _g = miss_util::profile::scope("serve.gather");
        let table = self.tables.get(vocab).ok_or_else(|| {
            MissError::corrupt(
                "params",
                format!(
                    "schema names vocabulary {vocab} but only {} tables froze",
                    self.tables.len()
                ),
            )
        })?;
        table.try_gather_rows_u32(ids)
    }
}

/// Borrowed name→tensor lookup over a store's parameter views.
struct Params<'a> {
    dense: Vec<(&'a str, &'a Tensor)>,
    tables: Vec<(&'a str, &'a Tensor)>,
}

impl<'a> Params<'a> {
    fn of(store: &'a ParamStore) -> Params<'a> {
        Params {
            dense: store.dense_views().map(|v| (v.name, v.value)).collect(),
            tables: store.table_views().map(|v| (v.name, v.value)).collect(),
        }
    }

    fn dense(&self, name: &str) -> MissResult<&'a Tensor> {
        self.dense
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
            .ok_or_else(|| MissError::UnknownParam {
                kind: "dense param",
                name: name.to_string(),
            })
    }

    fn has_dense(&self, name: &str) -> bool {
        self.dense.iter().any(|(n, _)| *n == name)
    }

    fn table(&self, name: &str) -> MissResult<&'a Tensor> {
        self.tables
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
            .ok_or_else(|| MissError::UnknownParam {
                kind: "embedding table",
                name: name.to_string(),
            })
    }
}

/// Which base architecture a checkpoint freezes into. The serving engine
/// supports the paper's three MISS host models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrozenArch {
    /// Deep Interest Network.
    Din,
    /// Deep Interest Evolution Network.
    Dien,
    /// Inner-product neural network.
    Ipnn,
}

impl FrozenArch {
    /// Parse a model label (case-insensitive); `None` for architectures the
    /// freeze step does not support.
    pub fn from_label(label: &str) -> Option<FrozenArch> {
        if label.eq_ignore_ascii_case("din") {
            Some(FrozenArch::Din)
        } else if label.eq_ignore_ascii_case("dien") {
            Some(FrozenArch::Dien)
        } else if label.eq_ignore_ascii_case("ipnn") {
            Some(FrozenArch::Ipnn)
        } else {
            None
        }
    }
}

/// For each sequential field, the categorical field sharing its vocabulary
/// (the candidate the attention unit matches against). The training stack
/// `expect`s here; serving returns a typed error because the schema arrives
/// with an untrusted checkpoint.
fn candidate_fields(schema: &Schema) -> MissResult<Vec<usize>> {
    schema
        .seq_fields
        .iter()
        .map(|sf| {
            schema
                .cat_fields
                .iter()
                .position(|(_, v)| *v == sf.vocab)
                .ok_or_else(|| {
                    MissError::corrupt(
                        "params",
                        format!("sequential field {} has no candidate counterpart", sf.name),
                    )
                })
        })
        .collect()
}

/// A model compiled for inference: contiguous frozen layers, pre-packed
/// GEMM panels, no tape, no optimizer state. Construct with
/// [`FrozenModel::freeze`] (from a live store) or [`load_frozen`]
/// (from a checkpoint file).
pub enum FrozenModel {
    /// Frozen DIN.
    Din(FrozenDin),
    /// Frozen DIEN.
    Dien(FrozenDien),
    /// Frozen IPNN.
    Ipnn(FrozenIpnn),
}

/// Frozen Deep Interest Network.
pub struct FrozenDin {
    pub(crate) schema: Schema,
    pub(crate) emb: FrozenTables,
    pub(crate) att: Vec<FrozenMlp>,
    pub(crate) cand_for_seq: Vec<usize>,
    pub(crate) deep: FrozenMlp,
}

/// Frozen Deep Interest Evolution Network.
pub struct FrozenDien {
    pub(crate) schema: Schema,
    pub(crate) emb: FrozenTables,
    pub(crate) gru: FrozenGru,
    pub(crate) augru: FrozenGru,
    pub(crate) deep: FrozenMlp,
}

/// Frozen product-based neural network.
pub struct FrozenIpnn {
    pub(crate) schema: Schema,
    pub(crate) emb: FrozenTables,
    pub(crate) deep: FrozenMlp,
}

impl FrozenModel {
    /// Compile `store`'s parameters for `arch` over `schema`. Parameters are
    /// looked up by the names the training constructors register, so extra
    /// parameters (MISS SSL heads, other co-registered models) are ignored.
    pub fn freeze(store: &ParamStore, schema: &Schema, arch: FrozenArch) -> MissResult<FrozenModel> {
        let p = Params::of(store);
        let emb = FrozenTables::freeze(&p, schema, "emb")?;
        match arch {
            FrozenArch::Din => {
                let att = (0..schema.num_seq())
                    .map(|j| FrozenMlp::freeze(&p, &format!("din.att{j}")))
                    .collect::<MissResult<Vec<_>>>()?;
                Ok(FrozenModel::Din(FrozenDin {
                    schema: schema.clone(),
                    emb,
                    att,
                    cand_for_seq: candidate_fields(schema)?,
                    deep: FrozenMlp::freeze(&p, "din.deep")?,
                }))
            }
            FrozenArch::Dien => Ok(FrozenModel::Dien(FrozenDien {
                schema: schema.clone(),
                emb,
                gru: FrozenGru::freeze(&p, "dien.gru")?,
                augru: FrozenGru::freeze(&p, "dien.augru")?,
                deep: FrozenMlp::freeze(&p, "dien.deep")?,
            })),
            FrozenArch::Ipnn => Ok(FrozenModel::Ipnn(FrozenIpnn {
                schema: schema.clone(),
                emb,
                deep: FrozenMlp::freeze(&p, "ipnn.deep")?,
            })),
        }
    }

    /// The schema the model scores against.
    pub fn schema(&self) -> &Schema {
        match self {
            FrozenModel::Din(m) => &m.schema,
            FrozenModel::Dien(m) => &m.schema,
            FrozenModel::Ipnn(m) => &m.schema,
        }
    }
}

/// Load a checkpoint into a freshly rebuilt architecture and freeze it.
///
/// `exp` must describe the experiment that *wrote* the checkpoint (base
/// model, SSL kind, model config) and `seed` its training seed, so the
/// rebuilt store registers the exact parameter set the artifact carries —
/// including SSL parameters, which freezing then ignores. Returns the
/// frozen model and the checkpoint's training progress.
pub fn load_frozen(
    path: &std::path::Path,
    exp: &miss_trainer::Experiment,
    schema: &Schema,
    seed: u64,
) -> MissResult<(FrozenModel, Option<miss_codec::TrainProgress>)> {
    let arch = FrozenArch::from_label(exp.base.label()).ok_or_else(|| MissError::UnknownParam {
        kind: "freezable base model",
        name: exp.base.label().to_string(),
    })?;
    let (mut store, _model) = exp.build_model(schema, seed);
    let progress = miss_codec::load_from_path(path, &mut store)?;
    let frozen = FrozenModel::freeze(&store, schema, arch)?;
    Ok((frozen, progress))
}
