//! Open-loop serving bench for the frozen inference engine.
//!
//! ```text
//! miss-serve bench --dataset <cds|books|alipay|tiny> --model <DIN|DIEN|IPNN>
//!                  [--miss] [--ckpt FILE] [--seed N] [--scale F]
//!                  [--requests N] [--candidates C] [--max-batch B,B,...]
//! ```
//!
//! Drives a seeded stream of simulated `(user, candidates[])` requests from
//! the interest world through the [`ScoreEngine`] at each `--max-batch`
//! setting and writes `BENCH_serving.json`: whole-queue throughput cases
//! (`queue_solo_mb1` / `queue_batch_mb<B>`) plus per-request latency
//! distributions (`request_latency_mb<B>`, where p50/p99 live). With
//! `MISS_PROFILE=1` the hot-path scope aggregates land in
//! `PROFILE_serving.json`. Without `--ckpt` the engine freezes a fresh
//! seeded initialisation — throughput does not depend on the weights'
//! values, only their shapes.
//!
//! Exit codes follow the workspace convention: `0` ok, `2` usage,
//! `3` bad checkpoint, `4` I/O failure.

use miss_data::{request_stream, Dataset, ScoreRequest, Split, World, WorldConfig};
use miss_serve::{load_frozen, FrozenArch, FrozenModel, ScoreEngine};
use miss_testkit::bench::{black_box, BenchGroup};
use miss_trainer::{Experiment, SslKind, ALL_BASELINES};
use std::path::Path;
use std::process::exit;
use std::time::Instant;

struct Args {
    values: Vec<String>,
}

impl Args {
    fn get(&self, flag: &str) -> Option<&str> {
        self.values
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.values.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.values.iter().any(|a| a == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {flag}: {s}");
                usage()
            }),
            None => default,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  miss-serve bench --dataset <cds|books|alipay|tiny> --model <DIN|DIEN|IPNN>\n  \
         {:18}[--miss] [--ckpt FILE] [--seed N] [--scale F]\n  \
         {:18}[--requests N] [--candidates C] [--max-batch B,B,...]\n\n\
         Scores a seeded open-loop request stream through the frozen engine at\n\
         each --max-batch setting and writes BENCH_serving.json (throughput +\n\
         p50/p99 request latency). --ckpt freezes a trained checkpoint (pass the\n\
         --model/--miss/--seed the training run used); otherwise a fresh seeded\n\
         initialisation is frozen.\n\n\
         exit codes: 0 ok, 2 usage, 3 bad checkpoint, 4 i/o failure",
        "", ""
    );
    exit(2)
}

fn world_config(args: &Args) -> WorldConfig {
    let scale: f64 = args.parsed("--scale", 1.0);
    match args.get("--dataset").unwrap_or("tiny") {
        "cds" => WorldConfig::amazon_cds(scale),
        "books" => WorldConfig::amazon_books(scale),
        "alipay" => WorldConfig::alipay(scale),
        "tiny" => WorldConfig::tiny(),
        other => {
            eprintln!("unknown dataset {other}");
            usage()
        }
    }
}

fn experiment(args: &Args) -> (Experiment, FrozenArch) {
    let name = args.get("--model").unwrap_or("DIN");
    let Some(base) = ALL_BASELINES
        .into_iter()
        .find(|b| b.label().eq_ignore_ascii_case(name))
    else {
        eprintln!("unknown model {name}");
        usage()
    };
    let Some(arch) = FrozenArch::from_label(base.label()) else {
        eprintln!("model {name} is not freezable (serving supports DIN, DIEN, IPNN)");
        usage()
    };
    let ssl = if args.has("--miss") {
        SslKind::Miss(miss_core::MissConfig::default())
    } else {
        SslKind::None
    };
    (Experiment::new(base, ssl), arch)
}

fn max_batches(args: &Args) -> Vec<usize> {
    let spec = args.get("--max-batch").unwrap_or("1,64,256");
    let mut out = Vec::new();
    for part in spec.split(',') {
        match part.trim().parse::<usize>() {
            Ok(b) if b > 0 => out.push(b),
            _ => {
                eprintln!("bad --max-batch entry: {part}");
                usage()
            }
        }
    }
    out
}

/// One open-loop pass, one batch at a time: each request's latency is the
/// service time of the batch it rode in (batch formation is identical to
/// the queue-scoring path, so the grouping — and therefore every score —
/// matches `score_queue` exactly).
fn latency_samples(engine: &ScoreEngine<'_>, stream: &[ScoreRequest]) -> Vec<u64> {
    let mut lat = Vec::with_capacity(stream.len());
    for (r0, r1) in engine.form_batches(stream) {
        let t0 = Instant::now();
        match engine.score_queue(&stream[r0..r1]) {
            Ok(scores) => black_box(scores),
            Err(err) => {
                eprintln!("miss-serve: {err}");
                exit(err.exit_code())
            }
        };
        let ns = t0.elapsed().as_nanos() as u64;
        for _ in r0..r1 {
            lat.push(ns);
        }
    }
    lat
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else { usage() };
    let args = Args { values: raw };
    if cmd != "bench" {
        usage()
    }

    let world = World::generate(world_config(&args), 0xDA7A);
    let dataset = Dataset::from_world(&world, 0xDA7A);
    let (exp, arch) = experiment(&args);
    let seed: u64 = args.parsed("--seed", 0);
    let frozen = match args.get("--ckpt") {
        Some(p) => match load_frozen(Path::new(p), &exp, &dataset.schema, seed) {
            Ok((m, progress)) => {
                if let Some(p) = progress {
                    println!("froze checkpoint at epoch {} (adam step {})", p.epoch, p.step);
                }
                m
            }
            Err(err) => {
                eprintln!("miss-serve: {err}");
                exit(err.exit_code())
            }
        },
        None => {
            let (store, _model) = exp.build_model(&dataset.schema, seed);
            match FrozenModel::freeze(&store, &dataset.schema, arch) {
                Ok(m) => m,
                Err(err) => {
                    eprintln!("miss-serve: {err}");
                    exit(err.exit_code())
                }
            }
        }
    };

    let num_requests: usize = args.parsed("--requests", 256);
    let candidates: usize = args.parsed("--candidates", 4);
    let stream = request_stream(&world, &dataset, Split::Test, num_requests, candidates, 0x5E64);
    let total_candidates = num_requests * candidates;

    let mut group = BenchGroup::new("serving");
    group.sample_size(10);
    group
        .meta("isa", miss_tensor::detected_isa())
        .meta("model", &exp.label())
        .meta("dataset", &dataset.name)
        .meta("miss_threads", &miss_parallel::max_threads().to_string())
        .meta("requests", &num_requests.to_string())
        .meta("candidates_per_request", &candidates.to_string())
        .meta("total_candidates", &total_candidates.to_string());

    for mb in max_batches(&args) {
        let engine = ScoreEngine::new(&frozen, mb);
        // Warm up allocators, panel caches, and the thread pool outside the
        // timed region; a scoring error on the generated stream is fatal.
        match engine.score_queue(&stream) {
            Ok(scores) => black_box(scores),
            Err(err) => {
                eprintln!("miss-serve: {err}");
                exit(err.exit_code())
            }
        };
        let case = if mb == 1 {
            "queue_solo_mb1".to_string()
        } else {
            format!("queue_batch_mb{mb}")
        };
        group.bench_function(&case, |b| b.iter(|| black_box(engine.score_queue(&stream))));
        let mut lat = latency_samples(&engine, &stream);
        group.record_case(&format!("request_latency_mb{mb}"), &mut lat);
    }
    group.finish();

    if miss_util::profile::enabled() {
        let dir = std::env::var("TESTKIT_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let path = Path::new(&dir).join("PROFILE_serving.json");
        match miss_util::profile::write_json(&path) {
            Ok(()) => println!("serving: wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
